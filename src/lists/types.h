// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Fundamental types of the sorted-list data model (paper, Section 2).

#ifndef TOPK_LISTS_TYPES_H_
#define TOPK_LISTS_TYPES_H_

#include <cstdint>

namespace topk {

/// Identifier of a data item. Item ids are dense: a database over n items uses
/// ids 0 .. n-1 (the paper's d1..dn map to 0..n-1).
using ItemId = uint32_t;

/// A local or overall score. The paper defines local scores as non-negative
/// reals; the library accepts arbitrary reals (the paper's own Gaussian
/// databases produce negative scores).
using Score = double;

/// 1-based position of an item within a sorted list, following the paper:
/// the item with the highest local score is at position 1.
using Position = uint32_t;

/// Sentinel for "no position" (positions are 1-based).
inline constexpr Position kInvalidPosition = 0;

/// Sentinel for "no item".
inline constexpr ItemId kInvalidItem = UINT32_MAX;

// The random-access structures (SortedList's by-item arrays, Database's
// interleaved item-major mirror rows) are laid out assuming the index types
// stay 32-bit: an item's m scores and m positions pack into 12*m contiguous
// bytes, which is what keeps a full per-item resolution inside one or two
// cache lines at DRAM scale (n in the millions). Widening either type is a
// deliberate layout decision, not a typedef edit — these asserts make the
// contract explicit.
static_assert(sizeof(ItemId) == 4, "item ids are 32-bit by layout contract");
static_assert(sizeof(Position) == 4, "positions are 32-bit by layout contract");

/// One (data item, local score) pair of a sorted list.
struct ListEntry {
  ItemId item = kInvalidItem;
  Score score = 0.0;

  friend bool operator==(const ListEntry& a, const ListEntry& b) {
    return a.item == b.item && a.score == b.score;
  }
};

/// Result of a random (by-item) access: the item's local score and position.
struct ItemLookup {
  Score score = 0.0;
  Position position = kInvalidPosition;
};

}  // namespace topk

#endif  // TOPK_LISTS_TYPES_H_
