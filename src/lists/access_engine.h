// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// AccessEngine: counted access layer between the algorithms and a Database.
// Every sorted/random/direct access an algorithm performs goes through this
// class, which maintains the per-run AccessStats, the per-list sorted-access
// cursors, and (optionally) a per-position audit trail used by the tests to
// verify access-pattern theorems (e.g. Theorem 5: BPA2 never accesses a list
// position twice).

#ifndef TOPK_LISTS_ACCESS_ENGINE_H_
#define TOPK_LISTS_ACCESS_ENGINE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "lists/access_stats.h"
#include "lists/database.h"
#include "lists/types.h"

namespace topk {

/// Result of one sorted or direct access.
struct AccessedEntry {
  ItemId item = kInvalidItem;
  Score score = 0.0;
  Position position = kInvalidPosition;
};

/// Counted access layer over an immutable Database. Not thread-safe; use one
/// engine per concurrent query execution. An engine is reusable: Reset()
/// rebinds it to a database and zeroes all cursors and counters while keeping
/// the backing storage, so repeated queries cost no allocations.
class AccessEngine {
 public:
  /// Creates an unbound engine; call Reset() before use.
  AccessEngine() = default;

  /// \param audit when true, records how many times each (list, position) pair
  ///        was touched; needed only by tests/ablations (costs O(n*m) memory).
  explicit AccessEngine(const Database& db, bool audit = false) {
    Reset(db, audit);
  }

  /// Rebinds the engine to `db` and clears stats, cursors and the audit trail.
  void Reset(const Database& db, bool audit = false);

  /// Sorted access: the next unread entry of list `list_index` (paper mode 1).
  /// Precondition: !SortedExhausted(list_index).
  /// (The three access primitives are inline: they sit on the hot path of
  /// every algorithm, and inlining them into the run loops is worth more than
  /// any of their bodies.)
  AccessedEntry SortedAccess(size_t list_index) {
    assert(!SortedExhausted(list_index));
    const Position pos = static_cast<Position>(++cursors_[list_index]);
    const ListEntry entry = db_->list(list_index).EntryAt(pos);
    ++stats_.sorted_accesses;
    RecordTouch(list_index, pos);
    return AccessedEntry{entry.item, entry.score, pos};
  }

  /// True when the sorted cursor of the list has walked past position n.
  bool SortedExhausted(size_t list_index) const {
    return cursors_[list_index] >= db_->num_items();
  }

  /// Current sorted-access depth of a list: the position of the last entry
  /// returned by SortedAccess (0 before the first access).
  Position SortedDepth(size_t list_index) const {
    return static_cast<Position>(cursors_[list_index]);
  }

  /// Largest sorted-access depth over all lists; the "stopping position" that
  /// the paper reports for FA/TA/BPA.
  Position MaxSortedDepth() const;

  /// Random access: score and position of `item` in list `list_index`
  /// (paper mode 2).
  ItemLookup RandomAccess(size_t list_index, ItemId item) {
    const ItemLookup lookup = db_->list(list_index).Lookup(item);
    ++stats_.random_accesses;
    RecordTouch(list_index, lookup.position);
    return lookup;
  }

  /// Direct access: entry at `position` of list `list_index` (Section 5.1).
  AccessedEntry DirectAccess(size_t list_index, Position position) {
    assert(position >= 1 && position <= db_->num_items());
    const ListEntry entry = db_->list(list_index).EntryAt(position);
    ++stats_.direct_accesses;
    RecordTouch(list_index, position);
    return AccessedEntry{entry.item, entry.score, position};
  }

  /// Access counts so far.
  const AccessStats& stats() const { return stats_; }

  /// Adds externally tallied accesses (the RawListIo fast path counts in a
  /// stack-local AccessStats and flushes once per run).
  void AddStats(const AccessStats& stats) { stats_ += stats; }

  /// The database being accessed.
  const Database& database() const { return *db_; }

  // --- audit trail (enabled via Reset/constructor flag) ---

  /// Number of times position `pos` of list `list_index` was touched by any
  /// access mode; always 0 when audit mode is off.
  uint32_t TouchCount(size_t list_index, Position pos) const {
    return audit_ ? touch_counts_[list_index][pos - 1] : 0;
  }

  /// Maximum touch count over all positions of a list; always 0 when audit
  /// mode is off.
  uint32_t MaxTouchCount(size_t list_index) const;

  bool audit_enabled() const { return audit_; }

 private:
  void RecordTouch(size_t list_index, Position pos) {
    if (audit_) {
      ++touch_counts_[list_index][pos - 1];
    }
  }

  const Database* db_ = nullptr;
  AccessStats stats_;
  std::vector<size_t> cursors_;  // entries consumed per list (0-based count)
  bool audit_ = false;
  std::vector<std::vector<uint32_t>> touch_counts_;  // [list][pos-1]
};

}  // namespace topk

#endif  // TOPK_LISTS_ACCESS_ENGINE_H_
