// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// AccessEngine: counted access layer between the algorithms and a Database.
// Every sorted/random/direct access an algorithm performs goes through this
// class, which maintains the per-run AccessStats, the per-list sorted-access
// cursors, and (optionally) a per-position audit trail used by the tests to
// verify access-pattern theorems (e.g. Theorem 5: BPA2 never accesses a list
// position twice).

#ifndef TOPK_LISTS_ACCESS_ENGINE_H_
#define TOPK_LISTS_ACCESS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "lists/access_stats.h"
#include "lists/database.h"
#include "lists/types.h"

namespace topk {

/// Result of one sorted or direct access.
struct AccessedEntry {
  ItemId item = kInvalidItem;
  Score score = 0.0;
  Position position = kInvalidPosition;
};

/// Counted access layer over an immutable Database. Not thread-safe; create
/// one engine per query execution.
class AccessEngine {
 public:
  /// \param audit when true, records how many times each (list, position) pair
  ///        was touched; needed only by tests/ablations (costs O(n*m) memory).
  explicit AccessEngine(const Database& db, bool audit = false);

  /// Sorted access: the next unread entry of list `list_index` (paper mode 1).
  /// Precondition: !SortedExhausted(list_index).
  AccessedEntry SortedAccess(size_t list_index);

  /// True when the sorted cursor of the list has walked past position n.
  bool SortedExhausted(size_t list_index) const {
    return cursors_[list_index] >= db_->num_items();
  }

  /// Current sorted-access depth of a list: the position of the last entry
  /// returned by SortedAccess (0 before the first access).
  Position SortedDepth(size_t list_index) const {
    return static_cast<Position>(cursors_[list_index]);
  }

  /// Largest sorted-access depth over all lists; the "stopping position" that
  /// the paper reports for FA/TA/BPA.
  Position MaxSortedDepth() const;

  /// Random access: score and position of `item` in list `list_index`
  /// (paper mode 2).
  ItemLookup RandomAccess(size_t list_index, ItemId item);

  /// Direct access: entry at `position` of list `list_index` (Section 5.1).
  AccessedEntry DirectAccess(size_t list_index, Position position);

  /// Access counts so far.
  const AccessStats& stats() const { return stats_; }

  /// The database being accessed.
  const Database& database() const { return *db_; }

  // --- audit trail (enabled via constructor flag) ---

  /// Number of times position `pos` of list `list_index` was touched by any
  /// access mode. Requires audit mode.
  uint32_t TouchCount(size_t list_index, Position pos) const {
    return touch_counts_[list_index][pos - 1];
  }

  /// Maximum touch count over all positions of a list. Requires audit mode.
  uint32_t MaxTouchCount(size_t list_index) const;

  bool audit_enabled() const { return audit_; }

 private:
  void RecordTouch(size_t list_index, Position pos) {
    if (audit_) {
      ++touch_counts_[list_index][pos - 1];
    }
  }

  const Database* db_;
  AccessStats stats_;
  std::vector<size_t> cursors_;  // entries consumed per list (0-based count)
  bool audit_;
  std::vector<std::vector<uint32_t>> touch_counts_;  // [list][pos-1]
};

}  // namespace topk

#endif  // TOPK_LISTS_ACCESS_ENGINE_H_
