// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/access_engine.h"

#include <algorithm>
#include <cassert>

namespace topk {

AccessEngine::AccessEngine(const Database& db, bool audit)
    : db_(&db),
      cursors_(db.num_lists(), 0),
      audit_(audit) {
  if (audit_) {
    touch_counts_.assign(db.num_lists(),
                         std::vector<uint32_t>(db.num_items(), 0));
  }
}

AccessedEntry AccessEngine::SortedAccess(size_t list_index) {
  assert(!SortedExhausted(list_index));
  const Position pos = static_cast<Position>(++cursors_[list_index]);
  const ListEntry& entry = db_->list(list_index).EntryAt(pos);
  ++stats_.sorted_accesses;
  RecordTouch(list_index, pos);
  return AccessedEntry{entry.item, entry.score, pos};
}

Position AccessEngine::MaxSortedDepth() const {
  size_t depth = 0;
  for (size_t cursor : cursors_) {
    depth = std::max(depth, cursor);
  }
  return static_cast<Position>(depth);
}

ItemLookup AccessEngine::RandomAccess(size_t list_index, ItemId item) {
  const ItemLookup lookup = db_->list(list_index).Lookup(item);
  ++stats_.random_accesses;
  RecordTouch(list_index, lookup.position);
  return lookup;
}

AccessedEntry AccessEngine::DirectAccess(size_t list_index, Position position) {
  assert(position >= 1 && position <= db_->num_items());
  const ListEntry& entry = db_->list(list_index).EntryAt(position);
  ++stats_.direct_accesses;
  RecordTouch(list_index, position);
  return AccessedEntry{entry.item, entry.score, position};
}

uint32_t AccessEngine::MaxTouchCount(size_t list_index) const {
  uint32_t max_count = 0;
  for (uint32_t count : touch_counts_[list_index]) {
    max_count = std::max(max_count, count);
  }
  return max_count;
}

}  // namespace topk
