// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/access_engine.h"

#include <algorithm>

namespace topk {

void AccessEngine::Reset(const Database& db, bool audit) {
  db_ = &db;
  stats_ = AccessStats{};
  cursors_.assign(db.num_lists(), 0);
  audit_ = audit;
  if (audit_) {
    touch_counts_.resize(db.num_lists());
    for (auto& counts : touch_counts_) {
      counts.assign(db.num_items(), 0);
    }
  } else {
    touch_counts_.clear();
  }
}

Position AccessEngine::MaxSortedDepth() const {
  size_t depth = 0;
  for (size_t cursor : cursors_) {
    depth = std::max(depth, cursor);
  }
  return static_cast<Position>(depth);
}

uint32_t AccessEngine::MaxTouchCount(size_t list_index) const {
  if (!audit_) {
    return 0;
  }
  uint32_t max_count = 0;
  for (uint32_t count : touch_counts_[list_index]) {
    max_count = std::max(max_count, count);
  }
  return max_count;
}

}  // namespace topk
