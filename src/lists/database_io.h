// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Database serialization: a human-readable CSV format (one row per item, one
// score column per list) and a compact binary format for large databases.

#ifndef TOPK_LISTS_DATABASE_IO_H_
#define TOPK_LISTS_DATABASE_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "lists/database.h"

namespace topk {

/// CSV layout:
///   item,list0,list1,...,list<m-1>
///   0,0.91,0.13,...
/// Rows may appear in any item order; every item in [0, n) must appear
/// exactly once.
Status WriteCsv(const Database& db, std::ostream& os);
Status WriteCsvFile(const Database& db, const std::string& path);

Result<Database> ReadCsv(std::istream& is);
Result<Database> ReadCsvFile(const std::string& path);

/// Binary layout (little-endian host order):
///   8-byte magic "TOPKDB\x01\n", u64 n, u64 m,
///   then m lists, each n records of (u32 item, f64 score) in descending
///   score order (the on-disk order *is* the sorted-list order).
Status WriteBinary(const Database& db, std::ostream& os);
Status WriteBinaryFile(const Database& db, const std::string& path);

Result<Database> ReadBinary(std::istream& is);
Result<Database> ReadBinaryFile(const std::string& path);

}  // namespace topk

#endif  // TOPK_LISTS_DATABASE_IO_H_
