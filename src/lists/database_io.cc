// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/database_io.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/macros.h"

namespace topk {

namespace {

constexpr char kMagic[8] = {'T', 'O', 'P', 'K', 'D', 'B', '\x01', '\n'};

Status CannotOpen(const std::string& path, const char* mode) {
  return Status::Invalid("cannot open '", path, "' for ", mode);
}

}  // namespace

Status WriteCsv(const Database& db, std::ostream& os) {
  const size_t n = db.num_items();
  const size_t m = db.num_lists();
  os << "item";
  for (size_t j = 0; j < m; ++j) {
    os << ",list" << j;
  }
  os << "\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (ItemId item = 0; item < n; ++item) {
    os << item;
    for (size_t j = 0; j < m; ++j) {
      os << "," << db.list(j).ScoreOf(item);
    }
    os << "\n";
  }
  if (!os) {
    return Status::Internal("stream write failure");
  }
  return Status::OK();
}

Status WriteCsvFile(const Database& db, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return CannotOpen(path, "writing");
  }
  return WriteCsv(db, file);
}

Result<Database> ReadCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    return Status::Invalid("empty CSV input");
  }
  // Header: item,list0,...
  size_t m = 0;
  {
    std::stringstream header(line);
    std::string cell;
    if (!std::getline(header, cell, ',') || cell != "item") {
      return Status::Invalid("CSV header must start with 'item', got '", cell,
                             "'");
    }
    while (std::getline(header, cell, ',')) {
      ++m;
    }
    if (m == 0) {
      return Status::Invalid("CSV header has no list columns");
    }
  }
  std::vector<std::vector<Score>> rows;  // rows[item][list]
  std::vector<bool> seen;
  size_t line_number = 1;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    std::stringstream row(line);
    std::string cell;
    if (!std::getline(row, cell, ',')) {
      return Status::Invalid("line ", line_number, ": missing item id");
    }
    size_t item = 0;
    try {
      item = std::stoul(cell);
    } catch (...) {
      return Status::Invalid("line ", line_number, ": bad item id '", cell,
                             "'");
    }
    if (item >= rows.size()) {
      rows.resize(item + 1, std::vector<Score>(m, 0.0));
      seen.resize(item + 1, false);
    }
    if (seen[item]) {
      return Status::Invalid("line ", line_number, ": item ", item,
                             " appears twice");
    }
    seen[item] = true;
    for (size_t j = 0; j < m; ++j) {
      if (!std::getline(row, cell, ',')) {
        return Status::Invalid("line ", line_number, ": expected ", m,
                               " scores");
      }
      try {
        rows[item][j] = std::stod(cell);
      } catch (...) {
        return Status::Invalid("line ", line_number, ": bad score '", cell,
                               "'");
      }
    }
    if (std::getline(row, cell, ',')) {
      return Status::Invalid("line ", line_number, ": too many columns");
    }
  }
  if (rows.empty()) {
    return Status::Invalid("CSV has no data rows");
  }
  for (size_t item = 0; item < seen.size(); ++item) {
    if (!seen[item]) {
      return Status::Invalid("item ", item,
                             " missing (ids must be dense 0..n-1)");
    }
  }
  return Database::FromScoreMatrix(rows);
}

Result<Database> ReadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return CannotOpen(path, "reading");
  }
  return ReadCsv(file);
}

Status WriteBinary(const Database& db, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  const uint64_t n = db.num_items();
  const uint64_t m = db.num_lists();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(reinterpret_cast<const char*>(&m), sizeof(m));
  for (size_t j = 0; j < m; ++j) {
    for (Position p = 1; p <= n; ++p) {
      const ListEntry& e = db.list(j).EntryAt(p);
      os.write(reinterpret_cast<const char*>(&e.item), sizeof(e.item));
      os.write(reinterpret_cast<const char*>(&e.score), sizeof(e.score));
    }
  }
  if (!os) {
    return Status::Internal("stream write failure");
  }
  return Status::OK();
}

Status WriteBinaryFile(const Database& db, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return CannotOpen(path, "writing");
  }
  return WriteBinary(db, file);
}

Result<Database> ReadBinary(std::istream& is) {
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Invalid("bad magic: not a topk binary database");
  }
  uint64_t n = 0;
  uint64_t m = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  is.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!is || n == 0 || m == 0) {
    return Status::Invalid("bad header (n=", n, ", m=", m, ")");
  }
  constexpr uint64_t kMaxReasonable = 1ULL << 32;
  if (n > kMaxReasonable || m > (1ULL << 16)) {
    return Status::Invalid("header out of range (n=", n, ", m=", m, ")");
  }
  std::vector<SortedList> lists;
  lists.reserve(m);
  for (uint64_t j = 0; j < m; ++j) {
    std::vector<ListEntry> entries(n);
    Score prev = std::numeric_limits<Score>::infinity();
    for (uint64_t p = 0; p < n; ++p) {
      ListEntry& e = entries[p];
      is.read(reinterpret_cast<char*>(&e.item), sizeof(e.item));
      is.read(reinterpret_cast<char*>(&e.score), sizeof(e.score));
      if (!is) {
        return Status::Invalid("truncated list ", j, " at record ", p);
      }
      if (e.score > prev) {
        return Status::Invalid("list ", j, " not in descending score order");
      }
      prev = e.score;
    }
    TOPK_ASSIGN_OR_RETURN(SortedList list,
                          SortedList::FromEntries(std::move(entries)));
    lists.push_back(std::move(list));
  }
  return Database::Make(std::move(lists));
}

Result<Database> ReadBinaryFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return CannotOpen(path, "reading");
  }
  return ReadBinary(file);
}

}  // namespace topk
