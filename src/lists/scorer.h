// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Monotonic scoring functions f(s1, ..., sm) -> overall score (paper, Sec. 2).

#ifndef TOPK_LISTS_SCORER_H_
#define TOPK_LISTS_SCORER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "lists/types.h"

namespace topk {

/// A monotonic aggregation function over m local scores.
///
/// Monotonicity (f(x) <= f(x') whenever x_i <= x'_i for all i) is required by
/// the correctness proofs of TA, BPA and BPA2; every scorer shipped with the
/// library is monotonic.
class Scorer {
 public:
  virtual ~Scorer() = default;

  /// Aggregates `count` local scores into an overall score.
  virtual Score Combine(const Score* scores, size_t count) const = 0;

  /// Human-readable name ("sum", "min", ...).
  virtual std::string name() const = 0;

  /// Convenience overload.
  Score Combine(const std::vector<Score>& scores) const {
    return Combine(scores.data(), scores.size());
  }
};

/// f = s1 + s2 + ... + sm (the paper's evaluation default). Final, with an
/// inline Combine: the algorithms devirtualize their hot loops onto it when a
/// query scores by summation.
class SumScorer final : public Scorer {
 public:
  using Scorer::Combine;
  Score Combine(const Score* scores, size_t count) const override {
    Score total = 0.0;
    for (size_t i = 0; i < count; ++i) {
      total += scores[i];
    }
    return total;
  }
  std::string name() const override { return "sum"; }
};

/// f = w1*s1 + ... + wm*sm with non-negative weights (monotonic).
class WeightedSumScorer final : public Scorer {
 public:
  using Scorer::Combine;
  /// Fails if any weight is negative (would break monotonicity).
  static Result<WeightedSumScorer> Make(std::vector<double> weights);

  Score Combine(const Score* scores, size_t count) const override;
  std::string name() const override { return "weighted-sum"; }

  const std::vector<double>& weights() const { return weights_; }

 private:
  explicit WeightedSumScorer(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  std::vector<double> weights_;
};

/// f = min(s1, ..., sm).
class MinScorer final : public Scorer {
 public:
  using Scorer::Combine;
  Score Combine(const Score* scores, size_t count) const override;
  std::string name() const override { return "min"; }
};

/// f = max(s1, ..., sm).
class MaxScorer final : public Scorer {
 public:
  using Scorer::Combine;
  Score Combine(const Score* scores, size_t count) const override;
  std::string name() const override { return "max"; }
};

/// f = (s1 + ... + sm) / m.
class AverageScorer final : public Scorer {
 public:
  using Scorer::Combine;
  Score Combine(const Score* scores, size_t count) const override;
  std::string name() const override { return "average"; }
};

/// Wraps an arbitrary user function. The caller promises monotonicity; the
/// library cannot verify it and the algorithms are incorrect without it.
class FunctionScorer final : public Scorer {
 public:
  using Scorer::Combine;
  using Fn = std::function<Score(const Score*, size_t)>;

  FunctionScorer(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  Score Combine(const Score* scores, size_t count) const override {
    return fn_(scores, count);
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

}  // namespace topk

#endif  // TOPK_LISTS_SCORER_H_
