// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Database: the paper's "set of m sorted lists" over a common item universe.

#ifndef TOPK_LISTS_DATABASE_H_
#define TOPK_LISTS_DATABASE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "lists/sorted_list.h"
#include "lists/types.h"

namespace topk {

/// An immutable collection of m sorted lists over items 0..n-1. Every item
/// appears exactly once in every list (enforced at construction).
class Database {
 public:
  Database() = default;

  /// Builds a database from already-constructed lists. Fails if there are no
  /// lists or the lists disagree on n.
  static Result<Database> Make(std::vector<SortedList> lists);

  /// Builds a database from an n x m score matrix: scores[i][j] is the local
  /// score of item i in list j. Fails if rows are ragged or empty.
  static Result<Database> FromScoreMatrix(
      const std::vector<std::vector<Score>>& scores);

  /// Number of lists (the paper's m).
  size_t num_lists() const { return lists_.size(); }

  /// Number of items per list (the paper's n).
  size_t num_items() const { return lists_.empty() ? 0 : lists_[0].size(); }

  /// The i-th list, 0-based.
  const SortedList& list(size_t i) const { return lists_[i]; }

  const std::vector<SortedList>& lists() const { return lists_; }

  // --- item-major random-access mirror ---
  //
  // The per-list SoA layout makes one Lookup one cache-line touch, but an
  // algorithm resolving an item reads it in *every* list — m touches spread
  // over m arrays. These mirrors store each item's m scores (and positions)
  // contiguously, so a full per-item resolution reads 1-2 cache lines total.
  // Costs n*m*12 bytes on top of the lists; built once at construction.

  /// The m local scores of `item`, indexed by list: ItemScoresRow(d)[j]
  /// == list(j).ScoreOf(d).
  const Score* ItemScoresRow(ItemId item) const {
    return &item_scores_[static_cast<size_t>(item) * lists_.size()];
  }

  /// The m 1-based positions of `item`, indexed by list:
  /// ItemPositionsRow(d)[j] == list(j).PositionOf(d).
  const Position* ItemPositionsRow(ItemId item) const {
    return &item_positions_[static_cast<size_t>(item) * lists_.size()];
  }

  /// True iff all local scores in all lists are non-negative (the paper's
  /// formal model; required by TPUT and by NRA's default score floor).
  bool AllScoresNonNegative() const;

  /// Exact overall score of `item` under `combine`, reading one score per list
  /// (used by the naive algorithm and by tests as ground truth).
  template <typename CombineFn>
  Score OverallScore(ItemId item, CombineFn&& combine) const {
    std::vector<Score> local(lists_.size());
    for (size_t i = 0; i < lists_.size(); ++i) {
      local[i] = lists_[i].ScoreOf(item);
    }
    return combine(local);
  }

 private:
  explicit Database(std::vector<SortedList> lists);

  std::vector<SortedList> lists_;
  std::vector<Score> item_scores_;        // [item * m + list]
  std::vector<Position> item_positions_;  // [item * m + list]
};

}  // namespace topk

#endif  // TOPK_LISTS_DATABASE_H_
