// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// Database: the paper's "set of m sorted lists" over a common item universe.

#ifndef TOPK_LISTS_DATABASE_H_
#define TOPK_LISTS_DATABASE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "lists/sorted_list.h"
#include "lists/types.h"

namespace topk {

/// An immutable collection of m sorted lists over items 0..n-1. Every item
/// appears exactly once in every list (enforced at construction).
class Database {
 public:
  Database() = default;

  /// Builds a database from already-constructed lists. Fails if there are no
  /// lists or the lists disagree on n.
  static Result<Database> Make(std::vector<SortedList> lists);

  /// Builds a database from an n x m score matrix: scores[i][j] is the local
  /// score of item i in list j. Fails if rows are ragged or empty.
  static Result<Database> FromScoreMatrix(
      const std::vector<std::vector<Score>>& scores);

  /// Number of lists (the paper's m).
  size_t num_lists() const { return lists_.size(); }

  /// Number of items per list (the paper's n).
  size_t num_items() const { return lists_.empty() ? 0 : lists_[0].size(); }

  /// The i-th list, 0-based.
  const SortedList& list(size_t i) const { return lists_[i]; }

  const std::vector<SortedList>& lists() const { return lists_; }

  // --- item-major random-access mirror ---
  //
  // The per-list SoA layout serves one list's lookup cheaply, but an
  // algorithm resolving an item reads it in *every* list — m touches spread
  // over m arrays. The mirror therefore stores one interleaved row per item:
  // the item's m scores followed by its m 32-bit positions, contiguous in a
  // single blob. Rows are padded to a stride that divides (or is a multiple
  // of) the 64-byte cache line and the blob's base is line-aligned, so a row
  // occupies exactly ceil(12*m/64) lines and never straddles an extra one —
  // for the common m <= 5 a full per-item resolution (all scores and all
  // positions) is ONE cache-line touch, where the previous two-array mirror
  // paid up to four in two distant regions. That factor-of-two-plus drop in
  // lines per random access is what the DRAM-resident (n in the millions)
  // BPA/TA loops prefetch against. Costs n*stride bytes (stride below); built
  // once at construction.

  /// The m local scores of `item`, indexed by list: ItemScoresRow(d)[j]
  /// == list(j).ScoreOf(d). The row is the first half of the item's mirror
  /// row; its positions follow contiguously (same cache line for m <= 5).
  const Score* ItemScoresRow(ItemId item) const {
    return reinterpret_cast<const Score*>(
        rows_base_ + static_cast<size_t>(item) * row_stride_);
  }

  /// The m 1-based positions of `item`, indexed by list:
  /// ItemPositionsRow(d)[j] == list(j).PositionOf(d).
  const Position* ItemPositionsRow(ItemId item) const {
    return reinterpret_cast<const Position*>(
        rows_base_ + static_cast<size_t>(item) * row_stride_ +
        positions_offset_);
  }

  /// Stride in bytes between consecutive items' mirror rows (12*m payload
  /// rounded up to 16/32/a multiple of 64).
  size_t item_row_stride_bytes() const { return row_stride_; }

  /// Payload bytes of one mirror row: m scores + m positions = 12*m.
  static constexpr size_t ItemRowPayloadBytes(size_t m) {
    return m * (sizeof(Score) + sizeof(Position));
  }

  /// True iff all local scores in all lists are non-negative (the paper's
  /// formal model; required by TPUT and by NRA's default score floor).
  bool AllScoresNonNegative() const;

  /// Exact overall score of `item` under `combine`, reading one score per list
  /// (used by the naive algorithm and by tests as ground truth).
  template <typename CombineFn>
  Score OverallScore(ItemId item, CombineFn&& combine) const {
    std::vector<Score> local(lists_.size());
    for (size_t i = 0; i < lists_.size(); ++i) {
      local[i] = lists_[i].ScoreOf(item);
    }
    return combine(local);
  }

 private:
  explicit Database(std::vector<SortedList> lists);

  std::vector<SortedList> lists_;

  // Interleaved item-major mirror. The blob is written once (via memcpy) at
  // construction and read-only afterwards through the typed row pointers
  // above; ownership is shared so a copied Database shares the immutable
  // blob instead of duplicating tens of megabytes. On Linux the blob is an
  // anonymous mapping advised MADV_HUGEPAGE before first touch: at DRAM
  // scale (n in the millions) the mirror spans tens of thousands of 4 KiB
  // pages and every random access would pay an L2-TLB miss / page walk on
  // top of the data fetch — 2 MiB transparent hugepages collapse the TLB
  // footprint ~512x.
  std::shared_ptr<unsigned char> item_rows_;
  const unsigned char* rows_base_ = nullptr;  // 64-byte-aligned first row
  size_t row_stride_ = 0;        // bytes between consecutive items' rows
  size_t positions_offset_ = 0;  // = m * sizeof(Score), start of positions
};

}  // namespace topk

#endif  // TOPK_LISTS_DATABASE_H_
