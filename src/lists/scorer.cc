// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.

#include "lists/scorer.h"

#include <algorithm>

namespace topk {

Result<WeightedSumScorer> WeightedSumScorer::Make(std::vector<double> weights) {
  if (weights.empty()) {
    return Status::Invalid("weighted sum needs at least one weight");
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      return Status::Invalid("weight ", i, " is negative (", weights[i],
                             "); monotonicity requires non-negative weights");
    }
  }
  return WeightedSumScorer(std::move(weights));
}

Score WeightedSumScorer::Combine(const Score* scores, size_t count) const {
  // A database with more lists than weights is a caller bug; combine over the
  // common prefix to stay total.
  const size_t n = std::min(count, weights_.size());
  Score total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += weights_[i] * scores[i];
  }
  return total;
}

Score MinScorer::Combine(const Score* scores, size_t count) const {
  Score best = scores[0];
  for (size_t i = 1; i < count; ++i) {
    best = std::min(best, scores[i]);
  }
  return best;
}

Score MaxScorer::Combine(const Score* scores, size_t count) const {
  Score best = scores[0];
  for (size_t i = 1; i < count; ++i) {
    best = std::max(best, scores[i]);
  }
  return best;
}

Score AverageScorer::Combine(const Score* scores, size_t count) const {
  Score total = 0.0;
  for (size_t i = 0; i < count; ++i) {
    total += scores[i];
  }
  return count == 0 ? 0.0 : total / static_cast<Score>(count);
}

}  // namespace topk
