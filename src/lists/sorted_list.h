// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// SortedList: one of the paper's m lists. Stores n (item, local score) pairs in
// descending score order and an inverted index for O(1) by-item lookups.
//
// Storage is structure-of-arrays: the sorted order lives in two parallel
// arrays items_[]/scores_[] (position -> item, position -> score), and random
// access goes through two by-item arrays (item -> score, item -> 32-bit
// position). The by-item side used to be a packed 16-byte {score, position}
// slot; splitting it saves the 4 alignment-padding bytes per (item, list) —
// 12 instead of 16 bytes, 25% less random-access footprint at DRAM scale —
// at the cost of a second array touch in Lookup. The library's hot random
// accesses do not come through here at all: they read the Database's
// interleaved item-major mirror rows (one cache line for all m lists), so
// this trade only affects the audited/engine access path and cold callers.

#ifndef TOPK_LISTS_SORTED_LIST_H_
#define TOPK_LISTS_SORTED_LIST_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lists/types.h"

namespace topk {

/// An immutable list of n items sorted by descending local score.
///
/// Supports the three access primitives of the paper:
///  * sorted access    — performed by an external cursor walking positions 1..n
///                       via EntryAt();
///  * random access    — Lookup(item) returns the item's score and position;
///  * direct access    — EntryAt(position) returns the entry at a position.
///
/// Ties are broken by ascending item id so that list order is deterministic.
class SortedList {
 public:
  SortedList() = default;

  /// Builds a list over items 0..scores.size()-1 where item i has local score
  /// scores[i]. Always succeeds (every id appears exactly once by construction).
  static SortedList FromScores(const std::vector<Score>& scores);

  /// Builds a list from arbitrary (item, score) pairs. Fails with
  /// Status::Invalid unless the items are exactly 0..n-1, each once.
  static Result<SortedList> FromEntries(std::vector<ListEntry> entries);

  /// Number of items in the list.
  size_t size() const { return items_.size(); }

  bool empty() const { return items_.empty(); }

  /// Entry at a 1-based position; position must be in [1, size()].
  ListEntry EntryAt(Position position) const {
    const size_t i = position - 1;
    return ListEntry{items_[i], scores_[i]};
  }

  /// Checked variant of EntryAt.
  Result<ListEntry> EntryAtChecked(Position position) const;

  /// Random access: score and 1-based position of `item`. Item must be < n.
  ItemLookup Lookup(ItemId item) const {
    return ItemLookup{score_by_item_[item], position_by_item_[item]};
  }

  /// Checked variant of Lookup.
  Result<ItemLookup> LookupChecked(ItemId item) const;

  /// Local score at a 1-based position — like EntryAt(position).score but a
  /// single array load (the BPA/BPA2 stop rules only need the score).
  Score ScoreAtPosition(Position position) const {
    return scores_[position - 1];
  }

  /// Position of `item` (1-based). Item must be < n.
  Position PositionOf(ItemId item) const { return position_by_item_[item]; }

  /// Local score of `item`. Item must be < n.
  Score ScoreOf(ItemId item) const { return score_by_item_[item]; }

  /// Highest local score (score at position 1). List must be non-empty.
  Score MaxScore() const { return scores_.front(); }

  /// Lowest local score (score at position n). List must be non-empty.
  Score MinScore() const { return scores_.back(); }

  /// True iff every local score is >= 0 (the paper's formal model).
  bool AllScoresNonNegative() const { return MinScore() >= 0.0; }

  /// Item ids in descending-score order (position p is items()[p-1]).
  const std::vector<ItemId>& items() const { return items_; }

  /// Local scores in descending order, parallel to items().
  const std::vector<Score>& scores() const { return scores_; }

 private:
  void BuildFrom(std::vector<ListEntry> entries);

  std::vector<ItemId> items_;   // position-1 -> item (descending score)
  std::vector<Score> scores_;   // position-1 -> local score
  std::vector<Score> score_by_item_;        // item -> local score
  std::vector<Position> position_by_item_;  // item -> 1-based position
};

}  // namespace topk

#endif  // TOPK_LISTS_SORTED_LIST_H_
