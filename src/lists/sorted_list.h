// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// SortedList: one of the paper's m lists. Stores n (item, local score) pairs in
// descending score order and an inverted index for O(1) by-item lookups.

#ifndef TOPK_LISTS_SORTED_LIST_H_
#define TOPK_LISTS_SORTED_LIST_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lists/types.h"

namespace topk {

/// An immutable list of n items sorted by descending local score.
///
/// Supports the three access primitives of the paper:
///  * sorted access    — performed by an external cursor walking positions 1..n
///                       via EntryAt();
///  * random access    — Lookup(item) returns the item's score and position;
///  * direct access    — EntryAt(position) returns the entry at a position.
///
/// Ties are broken by ascending item id so that list order is deterministic.
class SortedList {
 public:
  SortedList() = default;

  /// Builds a list over items 0..scores.size()-1 where item i has local score
  /// scores[i]. Always succeeds (every id appears exactly once by construction).
  static SortedList FromScores(const std::vector<Score>& scores);

  /// Builds a list from arbitrary (item, score) pairs. Fails with
  /// Status::Invalid unless the items are exactly 0..n-1, each once.
  static Result<SortedList> FromEntries(std::vector<ListEntry> entries);

  /// Number of items in the list.
  size_t size() const { return entries_.size(); }

  bool empty() const { return entries_.empty(); }

  /// Entry at a 1-based position; position must be in [1, size()].
  const ListEntry& EntryAt(Position position) const {
    return entries_[position - 1];
  }

  /// Checked variant of EntryAt.
  Result<ListEntry> EntryAtChecked(Position position) const;

  /// Random access: score and 1-based position of `item`. Item must be < n.
  ItemLookup Lookup(ItemId item) const {
    const Position pos = position_of_[item];
    return ItemLookup{entries_[pos - 1].score, pos};
  }

  /// Checked variant of Lookup.
  Result<ItemLookup> LookupChecked(ItemId item) const;

  /// Position of `item` (1-based). Item must be < n.
  Position PositionOf(ItemId item) const { return position_of_[item]; }

  /// Local score of `item`. Item must be < n.
  Score ScoreOf(ItemId item) const {
    return entries_[position_of_[item] - 1].score;
  }

  /// Highest local score (score at position 1). List must be non-empty.
  Score MaxScore() const { return entries_.front().score; }

  /// Lowest local score (score at position n). List must be non-empty.
  Score MinScore() const { return entries_.back().score; }

  /// True iff every local score is >= 0 (the paper's formal model).
  bool AllScoresNonNegative() const { return MinScore() >= 0.0; }

  /// The underlying descending-ordered entries.
  const std::vector<ListEntry>& entries() const { return entries_; }

 private:
  void BuildIndex();

  std::vector<ListEntry> entries_;       // descending (score, then item asc)
  std::vector<Position> position_of_;    // item id -> 1-based position
};

}  // namespace topk

#endif  // TOPK_LISTS_SORTED_LIST_H_
