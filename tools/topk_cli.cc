// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// topk — command-line front end for the library.
//
// Generate a database:
//   topk gen --kind uniform --n 10000 --m 4 --seed 7 --out db.csv
//   topk gen --kind correlated --alpha 0.01 --n 10000 --m 4 --out db.bin
//
// Run a query:
//   topk query --db db.csv --k 10 --algo bpa2 --scorer sum
//   topk query --db db.bin --k 5 --algo ta --scorer weighted
//              --weights 1,2,0.5,1 --tracker btree --verbose
//
// Compare all algorithms on a database:
//   topk compare --db db.csv --k 10
//
// Serve a batch through the multi-threaded TopKServer (smoke test of the
// serving path: admission queue, per-request SLA, watchdog cancellation):
//   topk serve --db db.csv --threads 4 --requests 200 --k 10 --algo bpa
//              [--deadline-ms MS] [--queue CAP] [--shed reject|degrade]

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/algorithms.h"
#include "core/topk_server.h"
#include "dist/coordinator.h"
#include "dist/fault_injecting_transport.h"
#include "dist/in_process_transport.h"
#include "gen/database_generator.h"
#include "lists/database_io.h"
#include "lists/scorer.h"

namespace topk {
namespace cli {
namespace {

int Usage() {
  std::cerr <<
      "usage:\n"
      "  topk gen     --kind uniform|gaussian|correlated --n N --m M\n"
      "               [--alpha A] [--theta T] [--seed S] --out FILE[.csv|.bin]\n"
      "  topk query   --db FILE --k K [--algo ALGO] [--scorer SCORER]\n"
      "               [--weights w1,w2,...] [--tracker KIND] [--verbose]\n"
      "               [--deadline-ms MS] [--access-budget N]\n"
      "               [--fault-seed S] [--kill-list L] [--kill-after N]\n"
      "               [--replicas R [--kill-replica L:R]]\n"
      "  topk compare --db FILE --k K [--scorer SCORER] [--weights ...]\n"
      "  topk serve   --db FILE [--threads N] [--requests R] [--k K]\n"
      "               [--algo ALGO] [--deadline-ms MS] [--queue CAP]\n"
      "               [--shed reject|degrade]\n"
      "\n"
      "algos:    naive fa ta bpa bpa2 tput nra ca   (default bpa2)\n"
      "scorers:  sum min max average weighted       (default sum)\n"
      "trackers: bitarray btree set                 (default bitarray)\n"
      "\n"
      "--deadline-ms / --access-budget govern the query: on a tripped limit\n"
      "the run stops at the next round boundary and reports an anytime\n"
      "answer with certified lower-bound scores and Fagin's theta factor.\n"
      "\n"
      "--kill-list L kills list L permanently after it serves --kill-after N\n"
      "accesses (default 1); the query fails over to NRA over the survivors\n"
      "and certifies the degraded answer. --fault-seed fixes the injection\n"
      "schedule so a degraded run replays exactly.\n"
      "\n"
      "--replicas R runs the query DISTRIBUTED: every list is served by R\n"
      "in-process owner replicas behind a coordinator (--algo bpa or tput).\n"
      "--kill-replica L:R kills replica R of list L after --kill-after N\n"
      "messages; with replication a sibling replica resumes the cursor\n"
      "exactly, without it the query degrades to a certified answer.\n";
  return 2;
}

// --flag value parser; returns map and positional command.
bool ParseArgs(int argc, char** argv, std::string* command,
               std::map<std::string, std::string>* flags) {
  if (argc < 2) {
    return false;
  }
  *command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return false;
    }
    arg = arg.substr(2);
    if (arg == "verbose") {
      (*flags)["verbose"] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      return false;
    }
    (*flags)[arg] = argv[++i];
  }
  return true;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Result<AlgorithmKind> ParseAlgo(const std::string& name) {
  static const std::map<std::string, AlgorithmKind> kMap = {
      {"naive", AlgorithmKind::kNaive}, {"fa", AlgorithmKind::kFa},
      {"ta", AlgorithmKind::kTa},       {"bpa", AlgorithmKind::kBpa},
      {"bpa2", AlgorithmKind::kBpa2},   {"tput", AlgorithmKind::kTput},
      {"nra", AlgorithmKind::kNra},     {"ca", AlgorithmKind::kCa}};
  auto it = kMap.find(name);
  if (it == kMap.end()) {
    return Status::Invalid("unknown algorithm '", name, "'");
  }
  return it->second;
}

Result<TrackerKind> ParseTracker(const std::string& name) {
  if (name == "bitarray") {
    return TrackerKind::kBitArray;
  }
  if (name == "btree") {
    return TrackerKind::kBPlusTree;
  }
  if (name == "set") {
    return TrackerKind::kSortedSet;
  }
  return Status::Invalid("unknown tracker '", name, "'");
}

Result<std::unique_ptr<Scorer>> ParseScorer(const std::string& name,
                                            const std::string& weights) {
  if (name == "sum") {
    return std::unique_ptr<Scorer>(new SumScorer());
  }
  if (name == "min") {
    return std::unique_ptr<Scorer>(new MinScorer());
  }
  if (name == "max") {
    return std::unique_ptr<Scorer>(new MaxScorer());
  }
  if (name == "average") {
    return std::unique_ptr<Scorer>(new AverageScorer());
  }
  if (name == "weighted") {
    std::vector<double> w;
    std::stringstream ss(weights);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        w.push_back(std::stod(cell));
      } catch (...) {
        return Status::Invalid("bad weight '", cell, "'");
      }
    }
    TOPK_ASSIGN_OR_RETURN(WeightedSumScorer scorer,
                          WeightedSumScorer::Make(std::move(w)));
    return std::unique_ptr<Scorer>(new WeightedSumScorer(std::move(scorer)));
  }
  return Status::Invalid("unknown scorer '", name, "'");
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<Database> LoadDb(const std::string& path) {
  if (EndsWith(path, ".bin")) {
    return ReadBinaryFile(path);
  }
  return ReadCsvFile(path);
}

Status SaveDb(const Database& db, const std::string& path) {
  if (EndsWith(path, ".bin")) {
    return WriteBinaryFile(db, path);
  }
  return WriteCsvFile(db, path);
}

Status RunGen(const std::map<std::string, std::string>& flags) {
  const std::string kind = FlagOr(flags, "kind", "uniform");
  const size_t n = std::stoul(FlagOr(flags, "n", "10000"));
  const size_t m = std::stoul(FlagOr(flags, "m", "4"));
  const uint64_t seed = std::stoull(FlagOr(flags, "seed", "42"));
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) {
    return Status::Invalid("gen requires --out FILE");
  }
  Database db;
  if (kind == "uniform") {
    db = MakeUniformDatabase(n, m, seed);
  } else if (kind == "gaussian") {
    db = MakeGaussianDatabase(n, m, seed);
  } else if (kind == "correlated") {
    CorrelatedConfig config;
    config.n = n;
    config.m = m;
    config.alpha = std::stod(FlagOr(flags, "alpha", "0.01"));
    config.zipf_theta = std::stod(FlagOr(flags, "theta", "0.7"));
    config.seed = seed;
    TOPK_ASSIGN_OR_RETURN(db, MakeCorrelatedDatabase(config));
  } else {
    return Status::Invalid("unknown database kind '", kind, "'");
  }
  TOPK_RETURN_NOT_OK(SaveDb(db, out));
  std::cout << "wrote " << kind << " database (n=" << db.num_items()
            << ", m=" << db.num_lists() << ") to " << out << "\n";
  return Status::OK();
}

// The distributed query path (--replicas): the same database served by R
// in-process owner replicas per list behind a Coordinator, optionally with a
// deterministic replica kill injected (--kill-replica L:R). The CLI twin of
// the dist_test replica suite — kill one replica of a group and watch the
// failover ladder keep the answer exact, or kill the only replica and watch
// the θ-certified degrade.
Status RunDistQuery(const std::map<std::string, std::string>& flags,
                    const Database& db, const Scorer& scorer, size_t k) {
  const size_t replicas = std::stoul(flags.at("replicas"));
  if (replicas < 1) {
    return Status::Invalid("--replicas must be >= 1; got ", replicas);
  }
  const std::string algo = FlagOr(flags, "algo", "bpa");
  if (algo != "bpa" && algo != "tput") {
    return Status::Invalid(
        "--replicas runs the distributed engines, so --algo must be bpa or "
        "tput; got '",
        algo, "'");
  }
  InProcessTransport inner = InProcessTransport::PerListOwners(db, replicas);
  TransportFaultPlan plan;
  plan.seed = std::stoull(FlagOr(flags, "fault-seed", "1"));
  const std::string kill = FlagOr(flags, "kill-replica", "");
  if (!kill.empty()) {
    const size_t colon = kill.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == kill.size()) {
      return Status::Invalid("--kill-replica wants <list>:<replica>; got '",
                             kill, "'");
    }
    const size_t list = std::stoul(kill.substr(0, colon));
    const size_t replica = std::stoul(kill.substr(colon + 1));
    if (list >= db.num_lists()) {
      return Status::Invalid("--kill-replica list ", list,
                             " exceeds the last list index ",
                             db.num_lists() - 1);
    }
    if (replica >= replicas) {
      return Status::Invalid("--kill-replica replica ", replica,
                             " exceeds the last replica index ", replicas - 1,
                             " (--replicas = ", replicas, ")");
    }
    plan.kill_owner =
        InProcessTransport::OwnerIndex(db.num_lists(), list, replica);
    plan.kill_after_messages = std::stoull(FlagOr(flags, "kill-after", "1"));
  }
  FaultInjectingTransport faulty(&inner, plan);
  Transport* transport = plan.enabled() ? static_cast<Transport*>(&faulty)
                                        : static_cast<Transport*>(&inner);
  DistOptions options;
  options.replication_factor = static_cast<uint32_t>(replicas);
  options.governor.deadline_ms = std::stod(FlagOr(flags, "deadline-ms", "0"));
  options.governor.total_access_budget =
      std::stoull(FlagOr(flags, "access-budget", "0"));
  Coordinator coordinator(transport, options);
  TOPK_RETURN_NOT_OK(coordinator.Connect());
  const TopKQuery query{k, &scorer};
  TOPK_ASSIGN_OR_RETURN(TopKResult result,
                        algo == "bpa" ? coordinator.ExecuteBpa(query)
                                      : coordinator.ExecuteTput(query));
  const DistStats& stats = coordinator.stats();

  TablePrinter table("top-" + std::to_string(k) + " by " + scorer.name() +
                     " (distributed " + algo + ", " +
                     std::to_string(replicas) + " replica(s)/list)");
  table.AddRow("rank", "item", "score");
  for (size_t i = 0; i < result.items.size(); ++i) {
    table.AddRow(i + 1, static_cast<uint64_t>(result.items[i].item),
                 result.items[i].score);
  }
  table.Print(std::cout);
  if (result.completion != Completion::kExact) {
    std::cout << "anytime answer (" << ToString(result.completion) << "): "
              << result.items.size() << " of " << k
              << " items, scores are certified lower bounds, theta = "
              << result.theta << " (unreturned <= "
              << result.unreturned_upper_bound << ")\n";
    if (result.failed_over) {
      std::cout << "note: " << result.dead_lists
                << " list(s) lost their whole replica group; the query "
                   "degraded to NRA over the survivors\n";
    }
  }
  std::cout << "wire: " << stats.messages_sent << " msgs sent, "
            << stats.replies_received << " replies, " << stats.bytes_sent
            << "+" << stats.bytes_received << " bytes, " << stats.rounds
            << " rounds\n"
            << "robustness: " << stats.retries << " retries, " << stats.hedges
            << " hedges (" << stats.hedge_wins << " won), " << stats.timeouts
            << " timeouts, " << stats.replica_failovers
            << " replica failovers, " << stats.breaker_opens
            << " breaker opens, " << stats.probes_sent << " probes, "
            << stats.owner_deaths << " owner death(s), " << stats.groups_lost
            << " group(s) lost, " << stats.virtual_ms << " virtual ms\n";
  if (flags.count("verbose")) {
    std::cout << "\naccesses: " << result.stats.ToString()
              << "\nstop position:  " << result.stop_position
              << "\ncompletion:     " << ToString(result.completion)
              << "\nelapsed:        " << result.elapsed_ms << " ms\n";
  }
  return Status::OK();
}

Status RunQuery(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "db", "");
  if (path.empty()) {
    return Status::Invalid("query requires --db FILE");
  }
  TOPK_ASSIGN_OR_RETURN(Database db, LoadDb(path));
  if (flags.count("replicas")) {
    TOPK_ASSIGN_OR_RETURN(std::unique_ptr<Scorer> dist_scorer,
                          ParseScorer(FlagOr(flags, "scorer", "sum"),
                                      FlagOr(flags, "weights", "")));
    return RunDistQuery(flags, db, *dist_scorer,
                        std::stoul(FlagOr(flags, "k", "10")));
  }
  TOPK_ASSIGN_OR_RETURN(AlgorithmKind algo,
                        ParseAlgo(FlagOr(flags, "algo", "bpa2")));
  TOPK_ASSIGN_OR_RETURN(
      std::unique_ptr<Scorer> scorer,
      ParseScorer(FlagOr(flags, "scorer", "sum"), FlagOr(flags, "weights", "")));
  AlgorithmOptions options;
  TOPK_ASSIGN_OR_RETURN(options.tracker,
                        ParseTracker(FlagOr(flags, "tracker", "bitarray")));
  // A permissive floor lets NRA/CA/TPUT run on negative-score databases.
  for (size_t i = 0; i < db.num_lists(); ++i) {
    options.score_floor = std::min(options.score_floor, db.list(i).MinScore());
  }
  const size_t k = std::stoul(FlagOr(flags, "k", "10"));
  options.governor.deadline_ms = std::stod(FlagOr(flags, "deadline-ms", "0"));
  options.governor.total_access_budget =
      std::stoull(FlagOr(flags, "access-budget", "0"));
  // Seeded fault injection on the single-query path: a targeted kill makes a
  // degraded run (failover to NRA, θ-certified answer) reproducible from the
  // command line.
  options.fault_plan.seed = std::stoull(FlagOr(flags, "fault-seed", "1"));
  if (flags.count("kill-list")) {
    options.fault_plan.kill_list = std::stoul(flags.at("kill-list"));
    options.fault_plan.kill_after_accesses =
        std::stoull(FlagOr(flags, "kill-after", "1"));
  }
  auto algorithm = MakeAlgorithm(algo, options);
  TOPK_ASSIGN_OR_RETURN(TopKResult result,
                        algorithm->Execute(db, TopKQuery{k, scorer.get()}));

  TablePrinter table("top-" + std::to_string(k) + " by " + scorer->name() +
                     " (" + algorithm->name() + ")");
  table.AddRow("rank", "item", "score");
  for (size_t i = 0; i < result.items.size(); ++i) {
    table.AddRow(i + 1, static_cast<uint64_t>(result.items[i].item),
                 result.items[i].score);
  }
  table.Print(std::cout);
  if (result.completion != Completion::kExact) {
    std::cout << "anytime answer (" << ToString(result.completion) << "): "
              << result.items.size() << " of " << k
              << " items, scores are certified lower bounds, theta = "
              << result.theta << " (unreturned <= "
              << result.unreturned_upper_bound << ")\n";
    if (result.failed_over) {
      std::cout << "note: " << result.dead_lists
                << " list(s) died; the query failed over to NRA over the "
                   "survivors\n";
    }
  }
  if (flags.count("verbose")) {
    std::cout << "\naccesses: " << result.stats.ToString()
              << "\nexecution cost: " << result.execution_cost
              << "\nstop position:  " << result.stop_position
              << "\ncompletion:     " << ToString(result.completion)
              << "\nelapsed:        " << result.elapsed_ms << " ms\n";
  }
  return Status::OK();
}

Status RunCompare(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "db", "");
  if (path.empty()) {
    return Status::Invalid("compare requires --db FILE");
  }
  TOPK_ASSIGN_OR_RETURN(Database db, LoadDb(path));
  TOPK_ASSIGN_OR_RETURN(
      std::unique_ptr<Scorer> scorer,
      ParseScorer(FlagOr(flags, "scorer", "sum"), FlagOr(flags, "weights", "")));
  const size_t k = std::stoul(FlagOr(flags, "k", "10"));
  AlgorithmOptions options;
  for (size_t i = 0; i < db.num_lists(); ++i) {
    options.score_floor = std::min(options.score_floor, db.list(i).MinScore());
  }
  TablePrinter table("algorithm comparison (k=" + std::to_string(k) + ", " +
                     scorer->name() + ", n=" + std::to_string(db.num_items()) +
                     ", m=" + std::to_string(db.num_lists()) + ")");
  table.AddRow("algorithm", "stop", "sorted", "random", "direct", "cost",
               "ms");
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    auto algorithm = MakeAlgorithm(kind, options);
    const Result<TopKResult> result =
        algorithm->Execute(db, TopKQuery{k, scorer.get()});
    if (!result.ok()) {
      table.AddRow(algorithm->name(), std::string("-"), std::string("-"),
                   std::string("-"), std::string("-"),
                   result.status().ToString(), std::string("-"));
      continue;
    }
    const TopKResult& r = result.ValueUnsafe();
    table.AddRow(algorithm->name(), static_cast<uint64_t>(r.stop_position),
                 r.stats.sorted_accesses, r.stats.random_accesses,
                 r.stats.direct_accesses, r.execution_cost, r.elapsed_ms);
  }
  table.Print(std::cout);
  return Status::OK();
}

// Smoke test of the serving path: pushes a closed batch of requests through
// a multi-threaded TopKServer and reports completion/shed/deadline counts.
// The point is exercising the real admission queue, worker pool and watchdog
// from the command line, not benchmarking — bench_micro --serve-json is the
// measured open-loop sweep.
Status RunServe(const std::map<std::string, std::string>& flags) {
  const std::string path = FlagOr(flags, "db", "");
  if (path.empty()) {
    return Status::Invalid("serve requires --db FILE");
  }
  TOPK_ASSIGN_OR_RETURN(Database db, LoadDb(path));
  TOPK_ASSIGN_OR_RETURN(AlgorithmKind algo,
                        ParseAlgo(FlagOr(flags, "algo", "bpa")));
  TOPK_ASSIGN_OR_RETURN(
      std::unique_ptr<Scorer> scorer,
      ParseScorer(FlagOr(flags, "scorer", "sum"), FlagOr(flags, "weights", "")));
  const size_t k = std::stoul(FlagOr(flags, "k", "10"));
  const size_t requests = std::stoul(FlagOr(flags, "requests", "100"));
  const double deadline_ms = std::stod(FlagOr(flags, "deadline-ms", "0"));
  const std::string shed = FlagOr(flags, "shed", "reject");

  ServerOptions options;
  options.num_threads = std::stoul(FlagOr(
      flags, "threads",
      std::to_string(std::max(1u, std::thread::hardware_concurrency()))));
  options.queue_capacity = std::stoul(FlagOr(flags, "queue", "256"));
  if (shed == "reject") {
    options.shed_policy = ShedPolicy::kReject;
  } else if (shed == "degrade") {
    options.shed_policy = ShedPolicy::kServeDegraded;
  } else {
    return Status::Invalid("unknown --shed '", shed, "' (reject|degrade)");
  }
  for (size_t i = 0; i < db.num_lists(); ++i) {
    options.algorithm_options.score_floor = std::min(
        options.algorithm_options.score_floor, db.list(i).MinScore());
  }

  TopKServer server(&db, options);
  std::vector<std::future<Result<TopKResult>>> futures;
  futures.reserve(requests);
  Timer wall;
  for (size_t i = 0; i < requests; ++i) {
    futures.push_back(server.Submit(
        ServerRequest{algo, TopKQuery{k, scorer.get()}, deadline_ms}));
  }
  size_t exact = 0;
  size_t anytime = 0;
  size_t errors = 0;
  for (auto& future : futures) {
    const Result<TopKResult> result = future.get();
    if (!result.ok()) {
      ++errors;
    } else if (result.ValueUnsafe().completion == Completion::kExact) {
      ++exact;
    } else {
      ++anytime;
    }
  }
  const double wall_ms = wall.ElapsedMillis();
  const ServerStats stats = server.stats();

  TablePrinter table("served " + std::to_string(requests) + " x " +
                     ToString(algo) + " k=" + std::to_string(k) + " on " +
                     std::to_string(options.num_threads) + " thread(s)");
  table.AddRow("metric", "value");
  table.AddRow("wall ms", wall_ms);
  table.AddRow("requests/sec", 1000.0 * static_cast<double>(requests) / wall_ms);
  table.AddRow("exact", static_cast<uint64_t>(exact));
  table.AddRow("anytime", static_cast<uint64_t>(anytime));
  table.AddRow("errors", static_cast<uint64_t>(errors));
  table.AddRow("shed (rejected)", stats.shed_rejected);
  table.AddRow("shed (degraded)", stats.shed_degraded);
  table.AddRow("expired queued", stats.expired_at_dequeue);
  table.AddRow("deadline cancels", stats.deadline_cancelled);
  table.Print(std::cout);
  return Status::OK();
}

int Main(int argc, char** argv) {
  std::string command;
  std::map<std::string, std::string> flags;
  if (!ParseArgs(argc, argv, &command, &flags)) {
    return Usage();
  }
  Status status;
  try {
    if (command == "gen") {
      status = RunGen(flags);
    } else if (command == "query") {
      status = RunQuery(flags);
    } else if (command == "compare") {
      status = RunCompare(flags);
    } else if (command == "serve" || command == "--serve") {
      status = RunServe(flags);
    } else {
      return Usage();
    }
  } catch (const std::exception& e) {
    // Numeric flag parsing (std::stoul/stod) throws on malformed input.
    std::cerr << "error: bad flag value (" << e.what() << ")\n";
    return 2;
  }
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cli
}  // namespace topk

int main(int argc, char** argv) { return topk::cli::Main(argc, argv); }
