// Copyright (c) the topk-bpa authors. Licensed under the Apache License 2.0.
//
// parity_dump: prints one line per (algorithm, workload) with the stop
// position, access counts and the exact result sequence of the candidate-pool
// algorithms (NRA, CA, TPUT). The output is a behavioural fingerprint: perf
// work on the pool family must leave every line byte-identical (same stop
// rules, same access pattern, same deterministic results). Diff the output of
// two builds to certify parity:
//
//   ./build/parity_dump > before.txt
//   ... optimize ...
//   ./build/parity_dump > after.txt && diff before.txt after.txt
//
// The default workload grid covers the paper fixtures (Figures 1 and 2), the
// three generator families (uniform, gaussian, correlated) across n/m/k/seed,
// the tie-quantized variants the differential fuzz harness uses, and
// min-scoring (the non-summation code path of NRA/CA).
//
// Passing any of the scenario flags switches to a single ad-hoc workload
// instead of the grid — spot-check parity at sizes the grid cannot afford
// (e.g. the DRAM-resident regime) without editing the binary:
//
//   ./build/parity_dump --n=1000000 --dist=zipf --k=20 > big_before.txt
//
// Flags: --n=<items> (default 1000), --m=<lists> (5), --k=<answers> (20),
// --dist={uniform,gaussian,correlated,zipf} (uniform), --seed=<rng> (1).
// Ad-hoc workloads dump summation scoring only (the min-scorer fallback
// sweeps the whole pool per stop check — prohibitive at large n).
//
// --algos=<csv of nra,ca,tput,bpa,dbpa,dtput> restricts which algorithms are
// dumped — an ad-hoc DRAM-scale fingerprint of one algorithm under test need
// not pay for the other deep scanners (CA alone at n=1M costs seconds; all
// three cost tens). It composes with either mode and does not by itself
// select ad-hoc mode: with no flags at all the full grid over the default
// three (nra, ca, tput) is dumped byte-identically to previous builds.
//
// dbpa/dtput run distributed BPA/TPUT through a Coordinator over per-list
// in-process ListOwner shards; bpa is single-node BPA with seen-item
// memoization (the access-count twin of the batched distributed rows). The
// distributed engines' fingerprints match their single-node counterparts
// field for field, so the certification diff is just a name rewrite:
//
//   diff <(./build/parity_dump --algos=bpa) \
//        <(./build/parity_dump --algos=dbpa | sed s/dBPA/BPA/)
//   diff <(./build/parity_dump --algos=tput) \
//        <(./build/parity_dump --algos=dtput | sed s/dTPUT/TPUT/)
//
// (Only min-scorer TPUT lines differ: both engines reject non-summation
// scoring with the same words, each naming itself in the message.)
//
// --replicas=<R> (default 1) serves every list from R in-process owner
// replicas with Coordinator replication to match. Fault-free replicated runs
// never leave replica 0, so the dump is byte-identical to --replicas=1 —
// diffing certifies the replication layer is invisible when healthy:
//
//   diff <(./build/parity_dump --algos=dbpa,dtput) \
//        <(./build/parity_dump --algos=dbpa,dtput --replicas=2)
//
// --governor=off|<spec> arms the query governor for every dumped execution.
// `off` (the default) keeps the historical byte-identical output. A <spec>
// is comma-separated key=value pairs over deadline-ms, sorted, random,
// total (access budgets) and pool-bytes, e.g.
// `--governor=total=5000,pool-bytes=65536`; governed lines append the
// completion and theta so anytime fingerprints are diffable too. Like
// --algos it composes with either mode without selecting ad-hoc mode.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flag_parse.h"
#include "common/macros.h"
#include "common/rng.h"
#include "core/algorithms.h"
#include "core/candidate_bounds.h"
#include "core/query_governor.h"
#include "dist/coordinator.h"
#include "dist/in_process_transport.h"
#include "gen/database_generator.h"
#include "gen/paper_fixtures.h"
#include "lists/scorer.h"

namespace topk {
namespace {

// One dumpable engine: a single-node algorithm, or a distributed one run
// through a Coordinator over per-list in-process ListOwner shards. The
// single-node bpa entry memoizes seen items so its access counts are the
// exact twin of dbpa's batched row resolution.
struct DumpAlgo {
  const char* token;   // --algos flag token
  const char* label;   // printed fingerprint name (historical bytes)
  AlgorithmKind kind;  // single-node engine, or the dist entry's twin
  bool dist;
};

constexpr DumpAlgo kDumpAlgos[] = {
    {"nra", "NRA", AlgorithmKind::kNra, false},
    {"ca", "CA", AlgorithmKind::kCa, false},
    {"tput", "TPUT", AlgorithmKind::kTput, false},
    {"bpa", "BPA", AlgorithmKind::kBpa, false},
    {"dbpa", "dBPA", AlgorithmKind::kBpa, true},
    {"dtput", "dTPUT", AlgorithmKind::kTput, true},
};

// The engines in fingerprint order; --algos restricts the dump to a subset
// (defaults to the historical pool-family three, which reproduces the
// historical output byte-for-byte).
std::vector<const DumpAlgo*> g_algos = {&kDumpAlgos[0], &kDumpAlgos[1],
                                        &kDumpAlgos[2]};

// Governor limits applied to every dumped execution; default-constructed
// (everything unlimited) reproduces the historical output byte-for-byte.
GovernorLimits g_governor;

// Owner replicas per list for the distributed engines (--replicas). 1 is
// the unreplicated PR 8 topology; fault-free dumps are byte-identical at
// any value.
size_t g_replicas = 1;

// Parses a --governor value: "off" or comma-separated key=value pairs
// (deadline-ms, sorted, random, total, pool-bytes).
bool ParseGovernor(const std::string& spec) {
  if (spec == "off") {
    g_governor = GovernorLimits{};
    return true;
  }
  size_t begin = 0;
  while (begin <= spec.size()) {
    const size_t comma = std::min(spec.find(',', begin), spec.size());
    const std::string pair = spec.substr(begin, comma - begin);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    const std::string key = pair.substr(0, eq);
    const char* value = pair.c_str() + eq + 1;
    bool ok = false;
    if (key == "deadline-ms") {
      ok = ParseFlagDouble(value, &g_governor.deadline_ms);
    } else if (key == "sorted") {
      ok = ParseFlagU64(value, &g_governor.sorted_access_budget);
    } else if (key == "random") {
      ok = ParseFlagU64(value, &g_governor.random_access_budget);
    } else if (key == "total") {
      ok = ParseFlagU64(value, &g_governor.total_access_budget);
    } else if (key == "pool-bytes") {
      ok = ParseFlagSize(value, &g_governor.pool_byte_budget);
    }
    if (!ok) {
      return false;
    }
    begin = comma + 1;
  }
  return g_governor.enabled();
}

// Parses a comma-separated --algos value ("nra,ca", case-sensitive short
// names) into g_algos, keeping fingerprint order and dropping duplicates.
bool ParseAlgos(const std::string& csv) {
  std::vector<const DumpAlgo*> selected;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = std::min(csv.find(',', begin), csv.size());
    const std::string name = csv.substr(begin, comma - begin);
    const DumpAlgo* algo = nullptr;
    for (const DumpAlgo& candidate : kDumpAlgos) {
      if (name == candidate.token) {
        algo = &candidate;
        break;
      }
    }
    if (algo == nullptr) {
      return false;
    }
    if (std::find(selected.begin(), selected.end(), algo) == selected.end()) {
      selected.push_back(algo);
    }
    begin = comma + 1;
  }
  // Fingerprint order is fixed (kDumpAlgos order) regardless of flag order
  // so two dumps of the same subset always diff cleanly.
  std::vector<const DumpAlgo*> ordered;
  for (const DumpAlgo& candidate : kDumpAlgos) {
    if (std::find(selected.begin(), selected.end(), &candidate) !=
        selected.end()) {
      ordered.push_back(&candidate);
    }
  }
  if (ordered.empty()) {
    return false;
  }
  g_algos = ordered;
  return true;
}

// Quantizes every score to multiples of 1/levels so ties are everywhere
// (mirrors the fuzz harness's ties mode, including the inexact levels = 3).
Database Quantize(const Database& db, double levels) {
  std::vector<std::vector<Score>> scores(db.num_items(),
                                         std::vector<Score>(db.num_lists()));
  for (ItemId item = 0; item < db.num_items(); ++item) {
    for (size_t i = 0; i < db.num_lists(); ++i) {
      scores[item][i] = std::round(db.list(i).ScoreOf(item) * levels) / levels;
    }
  }
  return Database::FromScoreMatrix(scores).ValueOrDie();
}

// Runs one distributed execution: a Coordinator over one in-process
// ListOwner per list (the finest sharding, so every list's windows and
// lookups are separate messages).
Result<TopKResult> RunDist(AlgorithmKind kind, const Database& db, size_t k,
                           const Scorer& scorer) {
  InProcessTransport transport =
      InProcessTransport::PerListOwners(db, g_replicas);
  DistOptions options;
  options.governor = g_governor;
  options.replication_factor = static_cast<uint32_t>(g_replicas);
  Coordinator coordinator(&transport, options);
  TOPK_RETURN_NOT_OK(coordinator.Connect());
  const TopKQuery query{k, &scorer};
  return kind == AlgorithmKind::kBpa ? coordinator.ExecuteBpa(query)
                                     : coordinator.ExecuteTput(query);
}

void DumpOne(const char* workload, const Database& db, size_t k,
             const Scorer& scorer) {
  AlgorithmOptions options;
  options.score_floor = DeriveScoreFloor(db);
  options.governor = g_governor;
  for (const DumpAlgo* algo : g_algos) {
    AlgorithmOptions run_options = options;
    // Single-node BPA's access-count twin of the distributed rows (dbpa
    // resolves each item once; so does memoized BPA).
    run_options.memoize_seen_items = algo->kind == AlgorithmKind::kBpa;
    const auto result =
        algo->dist
            ? RunDist(algo->kind, db, k, scorer)
            : MakeAlgorithm(algo->kind, run_options)
                  ->Execute(db, TopKQuery{k, &scorer});
    if (!result.ok()) {
      std::printf("%s k=%zu f=%s %s: %s\n", workload, k,
                  scorer.name().c_str(), algo->label,
                  result.status().ToString().c_str());
      continue;
    }
    const TopKResult& r = result.ValueOrDie();
    std::string items;
    char buf[96];
    for (const ResultItem& item : r.items) {
      std::snprintf(buf, sizeof(buf), " %u:%.17g", item.item, item.score);
      items += buf;
    }
    // Governed lines append the completion + certificate; with the governor
    // off the format (and so the whole dump) stays byte-identical to the
    // historical fingerprint.
    std::string governed;
    if (g_governor.enabled()) {
      std::snprintf(buf, sizeof(buf), " completion=%s theta=%.17g",
                    ToString(r.completion), r.theta);
      governed = buf;
    }
    std::printf(
        "%s k=%zu f=%s %s: stop=%u as=%llu ar=%llu ad=%llu%s items=%s\n",
        workload, k, scorer.name().c_str(), algo->label, r.stop_position,
        static_cast<unsigned long long>(r.stats.sorted_accesses),
        static_cast<unsigned long long>(r.stats.random_accesses),
        static_cast<unsigned long long>(r.stats.direct_accesses),
        governed.c_str(), items.c_str());
  }
}

void DumpGrid() {
  SumScorer sum;
  MinScorer min;

  for (size_t k : {1, 2, 3, 8, 14}) {
    DumpOne("fig1", MakeFigure1Database(), k, sum);
    DumpOne("fig2", MakeFigure2Database(), k, sum);
    DumpOne("fig1", MakeFigure1Database(), k, min);
  }

  char label[128];
  for (const size_t n : {50, 200, 1000}) {
    for (const size_t m : {1, 2, 5}) {
      for (uint64_t seed = 1; seed <= 4; ++seed) {
        for (const size_t k : {size_t{1}, size_t{5}, n / 2, n}) {
          if (k == 0 || k > n) {
            continue;
          }
          {
            const Database db = MakeUniformDatabase(n, m, seed);
            std::snprintf(label, sizeof(label), "uniform n=%zu m=%zu s=%llu",
                          n, m, static_cast<unsigned long long>(seed));
            DumpOne(label, db, k, sum);
            std::snprintf(label, sizeof(label),
                          "uniform-q3 n=%zu m=%zu s=%llu", n, m,
                          static_cast<unsigned long long>(seed));
            DumpOne(label, Quantize(db, 3.0), k, sum);
            std::snprintf(label, sizeof(label),
                          "uniform-q4 n=%zu m=%zu s=%llu", n, m,
                          static_cast<unsigned long long>(seed));
            DumpOne(label, Quantize(db, 4.0), k, sum);
          }
          {
            const Database db = MakeGaussianDatabase(n, m, seed);
            std::snprintf(label, sizeof(label), "gaussian n=%zu m=%zu s=%llu",
                          n, m, static_cast<unsigned long long>(seed));
            DumpOne(label, db, k, sum);
            std::snprintf(label, sizeof(label),
                          "gaussian-q3 n=%zu m=%zu s=%llu", n, m,
                          static_cast<unsigned long long>(seed));
            DumpOne(label, Quantize(db, 3.0), k, sum);
          }
          {
            CorrelatedConfig config;
            config.n = n;
            config.m = m;
            config.alpha = 0.01;
            config.seed = seed;
            const Database db = MakeCorrelatedDatabase(config).ValueOrDie();
            std::snprintf(label, sizeof(label),
                          "correlated n=%zu m=%zu s=%llu", n, m,
                          static_cast<unsigned long long>(seed));
            DumpOne(label, db, k, sum);
          }
        }
      }
    }
  }

  // Non-summation scoring exercises the generic-scorer stop path.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Database db = MakeUniformDatabase(300, 3, seed);
    std::snprintf(label, sizeof(label), "uniform-min n=300 m=3 s=%llu",
                  static_cast<unsigned long long>(seed));
    DumpOne(label, db, 7, min);
  }

  // The bench_micro throughput workload itself.
  DumpOne("bench uniform n=10000 m=5 s=11", MakeUniformDatabase(10000, 5, 11),
          20, sum);
}

// One ad-hoc workload from the scenario flags (see the file comment).
struct AdhocConfig {
  size_t n = 1000;
  size_t m = 5;
  size_t k = 20;
  std::string dist = "uniform";
  uint64_t seed = 1;
};

int DumpAdhoc(const AdhocConfig& config) {
  if (config.n == 0 || config.m == 0 || config.k == 0 ||
      config.k > config.n) {
    std::fprintf(stderr, "invalid workload: n=%zu m=%zu k=%zu\n", config.n,
                 config.m, config.k);
    return 1;
  }
  DatabaseKind kind = DatabaseKind::kUniform;
  ParseDatabaseKind(config.dist, &kind);  // validated during flag parsing
  const Database db =
      MakeDatabaseOfKind(kind, config.n, config.m, config.seed);
  char label[128];
  std::snprintf(label, sizeof(label), "adhoc %s n=%zu m=%zu s=%llu",
                config.dist.c_str(), config.n, config.m,
                static_cast<unsigned long long>(config.seed));
  SumScorer sum;
  DumpOne(label, db, config.k, sum);
  return 0;
}

}  // namespace
}  // namespace topk

int main(int argc, char** argv) {
  topk::AdhocConfig config;
  bool adhoc = false;
  bool ok = true;
  // Shared CLI flag helpers (see common/flag_parse.h): same flag shapes and
  // strict numeric parses as bench_micro.
  const auto value_of = [&](const std::string& arg, const char* name,
                            int* i) -> const char* {
    return topk::FlagValue(arg, name, i, argc, argv);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const char* v = value_of(arg, "--algos", &i)) {
      // Restricts which algorithms are dumped; does not by itself select
      // ad-hoc mode (a filtered full-grid dump is legal).
      ok &= topk::ParseAlgos(v);
      continue;
    }
    if (const char* v = value_of(arg, "--governor", &i)) {
      // Governs every dumped execution; a governed full-grid dump is legal.
      ok &= topk::ParseGovernor(v);
      continue;
    }
    if (const char* v = value_of(arg, "--replicas", &i)) {
      // Replicates the distributed engines' owners; a replicated full-grid
      // dump is legal (and byte-identical — that is the point).
      ok &= topk::ParseFlagSize(v, &topk::g_replicas) && topk::g_replicas >= 1;
      continue;
    }
    if (const char* v = value_of(arg, "--n", &i)) {
      ok &= topk::ParseFlagSize(v, &config.n);
    } else if (const char* v = value_of(arg, "--m", &i)) {
      ok &= topk::ParseFlagSize(v, &config.m);
    } else if (const char* v = value_of(arg, "--k", &i)) {
      ok &= topk::ParseFlagSize(v, &config.k);
    } else if (const char* v = value_of(arg, "--seed", &i)) {
      ok &= topk::ParseFlagU64(v, &config.seed);
    } else if (const char* v = value_of(arg, "--dist", &i)) {
      config.dist = v;
      topk::DatabaseKind parsed;
      ok &= topk::ParseDatabaseKind(config.dist, &parsed);
    } else {
      ok = false;
    }
    adhoc = true;  // any workload argument selects (or fails toward) ad-hoc
  }
  if (!ok) {
    // A typo must not silently fingerprint a different workload.
    std::fprintf(stderr,
                 "usage: parity_dump [--n=<items>] [--m=<lists>]"
                 " [--k=<answers>] [--seed=<rng>]"
                 " [--dist={uniform,gaussian,correlated,zipf}]"
                 " [--algos=<csv of nra,ca,tput,bpa,dbpa,dtput>]"
                 " [--governor=off|<key=value,...>] [--replicas=<R>]\n"
                 "governor keys: deadline-ms sorted random total pool-bytes\n"
                 "with no workload flags, dumps the built-in grid\n");
    return 1;
  }
  if (adhoc) {
    return topk::DumpAdhoc(config);
  }
  topk::DumpGrid();
  return 0;
}
